// Package policy implements the vendor-independent routing-policy IR that
// Bonsai operates over (route maps, community lists, prefix lists and ACLs),
// along with two semantics: a concrete evaluator used when simulating the
// control plane, and a symbolic compiler into BDDs used by the compression
// algorithm to decide transfer-function equivalence in O(1) (paper §5.1).
package policy

import (
	"fmt"
	"net/netip"

	"bonsai/internal/protocols"
)

// Action is a permit/deny verdict.
type Action int

// Actions.
const (
	Permit Action = iota
	Deny
)

func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// PrefixEntry is one line of a prefix list: action plus a prefix with
// optional ge/le length bounds (0 means exact-match-only on that side).
type PrefixEntry struct {
	Action Action       `json:"action"`
	Prefix netip.Prefix `json:"prefix"`
	Ge     int          `json:"ge,omitempty"`
	Le     int          `json:"le,omitempty"`
}

// matches reports whether a destination prefix matches this entry.
func (e PrefixEntry) matches(p netip.Prefix) bool {
	if !e.Prefix.Contains(p.Addr()) && e.Prefix != p {
		return false
	}
	if p.Bits() < e.Prefix.Bits() {
		return false
	}
	ge, le := e.Ge, e.Le
	if ge == 0 {
		ge = e.Prefix.Bits()
	}
	if le == 0 {
		le = e.Prefix.Bits()
		if e.Ge != 0 {
			le = 32
		}
	}
	return p.Bits() >= ge && p.Bits() <= le
}

// PrefixList is an ordered list of prefix entries with first-match-wins
// semantics and implicit deny.
type PrefixList struct {
	Name    string        `json:"name,omitempty"`
	Entries []PrefixEntry `json:"entries"`
}

// Matches reports whether prefix p is permitted by the list.
func (l *PrefixList) Matches(p netip.Prefix) bool {
	for _, e := range l.Entries {
		if e.matches(p) {
			return e.Action == Permit
		}
	}
	return false
}

// CommunityList names a set of communities; it matches a route carrying any
// of them.
type CommunityList struct {
	Name        string                `json:"name,omitempty"`
	Communities []protocols.Community `json:"communities"`
}

// Matches reports whether the route's community set intersects the list.
func (l *CommunityList) Matches(cs protocols.CommSet) bool {
	for _, c := range l.Communities {
		if cs.Has(c) {
			return true
		}
	}
	return false
}

// MatchKind discriminates route-map match conditions.
type MatchKind int

// Match kinds.
const (
	MatchCommunity MatchKind = iota // Arg names a community list
	MatchPrefix                     // Arg names a prefix list
)

// Match is one match condition of a route-map clause; all matches in a
// clause must hold (logical AND).
type Match struct {
	Kind MatchKind `json:"kind"`
	Arg  string    `json:"arg"`
}

// SetKind discriminates route-map set actions.
type SetKind int

// Set kinds.
const (
	SetLocalPref SetKind = iota
	AddCommunity
	DeleteCommunity
)

// Set is one set action of a permitting route-map clause.
type Set struct {
	Kind  SetKind             `json:"kind"`
	Value uint32              `json:"value,omitempty"` // for SetLocalPref
	Comm  protocols.Community `json:"comm,omitempty"`  // for Add/DeleteCommunity
}

// Clause is one sequence of a route map. A clause with no matches matches
// everything.
type Clause struct {
	Seq     int     `json:"seq"`
	Action  Action  `json:"action"`
	Matches []Match `json:"matches,omitempty"`
	Sets    []Set   `json:"sets,omitempty"`
}

// RouteMap is an ordered list of clauses with first-match-wins semantics and
// implicit deny at the end.
type RouteMap struct {
	Name    string   `json:"name,omitempty"`
	Clauses []Clause `json:"clauses"`
}

// ACL is a destination-based packet filter applied on an interface. It does
// not affect routing, but Bonsai folds it into the edge signature so that
// fwd-equivalence is preserved (paper §6).
type ACL struct {
	Name    string        `json:"name,omitempty"`
	Entries []PrefixEntry `json:"entries"`
}

// Permits reports whether traffic to prefix p passes the ACL.
func (a *ACL) Permits(p netip.Prefix) bool {
	for _, e := range a.Entries {
		if e.matches(p) {
			return e.Action == Permit
		}
	}
	return false
}

// Env is a router's namespace of policy objects.
type Env struct {
	PrefixLists    map[string]*PrefixList
	CommunityLists map[string]*CommunityList
	RouteMaps      map[string]*RouteMap
	ACLs           map[string]*ACL
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{
		PrefixLists:    make(map[string]*PrefixList),
		CommunityLists: make(map[string]*CommunityList),
		RouteMaps:      make(map[string]*RouteMap),
		ACLs:           make(map[string]*ACL),
	}
}

// clauseMatches evaluates a clause's match conditions concretely against a
// destination prefix and community set.
func (env *Env) clauseMatches(cl *Clause, pfx netip.Prefix, comms protocols.CommSet) (bool, error) {
	for _, m := range cl.Matches {
		switch m.Kind {
		case MatchCommunity:
			l, ok := env.CommunityLists[m.Arg]
			if !ok {
				return false, fmt.Errorf("policy: unknown community list %q", m.Arg)
			}
			if !l.Matches(comms) {
				return false, nil
			}
		case MatchPrefix:
			l, ok := env.PrefixLists[m.Arg]
			if !ok {
				return false, fmt.Errorf("policy: unknown prefix list %q", m.Arg)
			}
			if !l.Matches(pfx) {
				return false, nil
			}
		default:
			return false, fmt.Errorf("policy: unknown match kind %d", m.Kind)
		}
	}
	return true, nil
}

// EvalRouteMap applies the named route map to a BGP attribute for routes to
// pfx. It returns the transformed attribute, or nil if the route is denied.
// An empty name means "no policy": permit unchanged. Unknown names or list
// references are configuration errors and panic, mirroring how a device
// would reject the configuration at load time.
func (env *Env) EvalRouteMap(name string, pfx netip.Prefix, a *protocols.BGPAttr) *protocols.BGPAttr {
	if name == "" {
		return a
	}
	rm, ok := env.RouteMaps[name]
	if !ok {
		panic(fmt.Sprintf("policy: unknown route map %q", name))
	}
	for i := range rm.Clauses {
		cl := &rm.Clauses[i]
		match, err := env.clauseMatches(cl, pfx, a.Comms)
		if err != nil {
			panic(err)
		}
		if !match {
			continue
		}
		if cl.Action == Deny {
			return nil
		}
		out := a.Clone()
		for _, s := range cl.Sets {
			switch s.Kind {
			case SetLocalPref:
				out.LP = s.Value
			case AddCommunity:
				out.Comms = out.Comms.With(s.Comm)
			case DeleteCommunity:
				out.Comms = out.Comms.Without(s.Comm)
			}
		}
		return out
	}
	return nil // implicit deny
}

// clauseReachableForPrefix reports whether the clause's prefix matches allow
// it to fire for routes to pfx. Community matches are input-dependent, so
// they are assumed satisfiable.
func (env *Env) clauseReachableForPrefix(cl *Clause, pfx netip.Prefix) bool {
	for _, m := range cl.Matches {
		if m.Kind == MatchPrefix {
			if l, ok := env.PrefixLists[m.Arg]; !ok || !l.Matches(pfx) {
				return false
			}
		}
	}
	return true
}

// LocalPrefValues returns the set of local-preference values the named route
// map may assign to a route for pfx, considering only clauses whose prefix
// matches are satisfied. This implements prefs(v) of Theorem 4.4.
func (env *Env) LocalPrefValues(name string, pfx netip.Prefix, into map[uint32]bool) {
	if name == "" {
		return
	}
	rm, ok := env.RouteMaps[name]
	if !ok {
		panic(fmt.Sprintf("policy: unknown route map %q", name))
	}
	for i := range rm.Clauses {
		cl := &rm.Clauses[i]
		if cl.Action == Deny || !env.clauseReachableForPrefix(cl, pfx) {
			continue
		}
		for _, s := range cl.Sets {
			if s.Kind == SetLocalPref {
				into[s.Value] = true
			}
		}
	}
}

// LocalPrefPassesThrough reports whether the named route map can permit a
// route to pfx without setting its local preference, so the incoming value
// survives. An empty name is the identity and always passes through; it is
// the companion predicate to LocalPrefValues for computing prefs(v).
func (env *Env) LocalPrefPassesThrough(name string, pfx netip.Prefix) bool {
	if name == "" {
		return true
	}
	rm, ok := env.RouteMaps[name]
	if !ok {
		panic(fmt.Sprintf("policy: unknown route map %q", name))
	}
	for i := range rm.Clauses {
		cl := &rm.Clauses[i]
		if cl.Action == Deny || !env.clauseReachableForPrefix(cl, pfx) {
			continue
		}
		setsLP := false
		for _, s := range cl.Sets {
			if s.Kind == SetLocalPref {
				setsLP = true
				break
			}
		}
		if !setsLP {
			return true
		}
	}
	return false
}

// ACLPermits evaluates the named ACL against a destination prefix; an empty
// name permits everything.
func (env *Env) ACLPermits(name string, pfx netip.Prefix) bool {
	if name == "" {
		return true
	}
	acl, ok := env.ACLs[name]
	if !ok {
		panic(fmt.Sprintf("policy: unknown ACL %q", name))
	}
	return acl.Permits(pfx)
}
