package policy

import (
	"math/rand"
	"net/netip"
	"testing"

	"bonsai/internal/protocols"
)

// randomRouteMap builds a random route map over a fixed universe of
// communities, prefix lists and LP values.
func randomRouteMap(rng *rand.Rand, env *Env, comms []protocols.Community) *RouteMap {
	rm := &RouteMap{Name: "R"}
	numClauses := 1 + rng.Intn(4)
	for c := 0; c < numClauses; c++ {
		cl := Clause{Seq: (c + 1) * 10}
		if rng.Intn(5) == 0 {
			cl.Action = Deny
		}
		// Matches: up to two, community and/or prefix.
		if rng.Intn(2) == 0 {
			list := []string{"cl0", "cl1"}[rng.Intn(2)]
			cl.Matches = append(cl.Matches, Match{Kind: MatchCommunity, Arg: list})
		}
		if rng.Intn(3) == 0 {
			list := []string{"pl0", "pl1"}[rng.Intn(2)]
			cl.Matches = append(cl.Matches, Match{Kind: MatchPrefix, Arg: list})
		}
		if cl.Action == Permit {
			numSets := rng.Intn(3)
			for s := 0; s < numSets; s++ {
				switch rng.Intn(3) {
				case 0:
					cl.Sets = append(cl.Sets, Set{Kind: SetLocalPref, Value: uint32(100 + 50*rng.Intn(5))})
				case 1:
					cl.Sets = append(cl.Sets, Set{Kind: AddCommunity, Comm: comms[rng.Intn(len(comms))]})
				case 2:
					cl.Sets = append(cl.Sets, Set{Kind: DeleteCommunity, Comm: comms[rng.Intn(len(comms))]})
				}
			}
		}
		rm.Clauses = append(rm.Clauses, cl)
	}
	return rm
}

// TestQuickCompileAgreesWithEval is the compile-fuzzer: for hundreds of
// random route maps, the BDD relation and the concrete evaluator must agree
// on every input — drops, communities and local preference alike.
func TestQuickCompileAgreesWithEval(t *testing.T) {
	comms := []protocols.Community{
		protocols.MakeCommunity(1, 1),
		protocols.MakeCommunity(1, 2),
		protocols.MakeCommunity(1, 3),
	}
	env := NewEnv()
	env.CommunityLists["cl0"] = &CommunityList{Communities: comms[:1]}
	env.CommunityLists["cl1"] = &CommunityList{Communities: comms[1:]}
	env.PrefixLists["pl0"] = &PrefixList{Entries: []PrefixEntry{
		{Action: Permit, Prefix: netip.MustParsePrefix("10.0.0.0/8"), Ge: 8, Le: 32},
	}}
	env.PrefixLists["pl1"] = &PrefixList{Entries: []PrefixEntry{
		{Action: Permit, Prefix: netip.MustParsePrefix("192.168.0.0/16"), Ge: 16, Le: 24},
	}}
	dests := []netip.Prefix{
		netip.MustParsePrefix("10.1.0.0/24"),
		netip.MustParsePrefix("192.168.3.0/24"),
		netip.MustParsePrefix("172.16.0.0/16"),
	}

	rng := rand.New(rand.NewSource(99))
	comp := NewCompiler(comms)
	trials := 200
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		env.RouteMaps["R"] = randomRouteMap(rng, env, comms)
		for _, dst := range dests {
			rel := comp.CompileRouteMap(env, "R", dst)
			for input := 0; input < 8; input++ {
				var cs protocols.CommSet
				for bit, cm := range comms {
					if input&(1<<bit) != 0 {
						cs = cs.With(cm)
					}
				}
				lp := uint32(100 + 10*rng.Intn(30))
				want := env.EvalRouteMap("R", dst, &protocols.BGPAttr{LP: lp, Comms: cs})
				gotC, gotLP, ok := comp.Apply(rel, cs, lp)
				if (want != nil) != ok {
					t.Fatalf("trial %d dst %v input %v: drop mismatch (eval=%v bdd=%v)",
						trial, dst, cs, want != nil, ok)
				}
				if want == nil {
					continue
				}
				if gotLP != want.LP || !gotC.Equal(want.Comms) {
					t.Fatalf("trial %d dst %v input %v lp=%d: bdd=(%v,%d) eval=(%v,%d)",
						trial, dst, cs, lp, gotC, gotLP, want.Comms, want.LP)
				}
			}
		}
	}
}

// TestQuickCanonicalMeansEquivalent: whenever two random route maps compile
// to the same node, exhaustive evaluation must agree everywhere (no false
// merges); and when evaluation agrees everywhere, the nodes must be equal
// (no false splits).
func TestQuickCanonicalMeansEquivalent(t *testing.T) {
	comms := []protocols.Community{
		protocols.MakeCommunity(2, 1),
		protocols.MakeCommunity(2, 2),
	}
	env := NewEnv()
	env.CommunityLists["cl0"] = &CommunityList{Communities: comms[:1]}
	env.CommunityLists["cl1"] = &CommunityList{Communities: comms[1:]}
	env.PrefixLists["pl0"] = &PrefixList{Entries: []PrefixEntry{
		{Action: Permit, Prefix: netip.MustParsePrefix("10.0.0.0/8"), Ge: 8, Le: 32},
	}}
	env.PrefixLists["pl1"] = &PrefixList{} // matches nothing
	dst := netip.MustParsePrefix("10.2.0.0/24")

	// Exhaustive behavioral signature over all 4 community inputs and a
	// couple of LP values.
	signature := func(name string) string {
		sig := ""
		for input := 0; input < 4; input++ {
			var cs protocols.CommSet
			for bit, cm := range comms {
				if input&(1<<bit) != 0 {
					cs = cs.With(cm)
				}
			}
			for _, lp := range []uint32{100, 250} {
				out := env.EvalRouteMap(name, dst, &protocols.BGPAttr{LP: lp, Comms: cs})
				if out == nil {
					sig += "D;"
				} else {
					sig += out.Comms.String() + "/" + itoa(out.LP) + ";"
				}
			}
		}
		return sig
	}

	rng := rand.New(rand.NewSource(123))
	comp := NewCompiler(comms)
	trials := 120
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		env.RouteMaps["A"] = randomRouteMap(rng, env, comms)
		env.RouteMaps["B"] = randomRouteMap(rng, env, comms)
		relA := comp.CompileRouteMap(env, "A", dst)
		relB := comp.CompileRouteMap(env, "B", dst)
		semEq := signature("A") == signature("B")
		if (relA == relB) != semEq {
			t.Fatalf("trial %d: canonical=%v semantic=%v\nA=%+v\nB=%+v",
				trial, relA == relB, semEq, env.RouteMaps["A"], env.RouteMaps["B"])
		}
	}
}

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
