// Package equiv checks CP-equivalence between a solved concrete SRP and a
// solved abstraction of it (paper §2, §4.2): label-equivalence — every node
// carries the h-image of its abstract counterpart's attribute — and
// fwd-equivalence — the forwarding relations agree modulo the topology
// function f. For BGP-effective abstractions with case splitting, the
// mapping from concrete nodes to split copies depends on the solution
// (Theorem 4.5), so the checker matches behaviors group-wise: every member's
// behavior must be realized by some copy and vice versa, with attribute
// paths compared after normalising both sides to abstraction groups.
package equiv

import (
	"fmt"
	"sort"

	"bonsai/internal/core"
	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

// Check verifies CP-equivalence of the two solutions. It returns nil when
// the solutions are label- and fwd-equivalent.
func Check(conc *srp.Instance, concSol *srp.Solution, abst *srp.Instance, absSol *srp.Solution, abs *core.Abstraction) error {
	groupOfCopy := make(map[topo.NodeID]int)
	for gi, copies := range abs.Copies {
		for _, c := range copies {
			groupOfCopy[c] = gi
		}
	}
	// Normalisers: map path node IDs to the primary copy of their group so
	// that concrete and abstract attributes become comparable.
	concNorm := func(u topo.NodeID) topo.NodeID { return abs.Copies[abs.F[u]][0] }
	absNorm := func(c topo.NodeID) topo.NodeID { return abs.Copies[groupOfCopy[c]][0] }

	concBehavior := func(u topo.NodeID) behavior {
		lbl := srp.MapAttr(conc.P, concSol.Label[u], concNorm)
		return behavior{lbl, fwdGroups(concSol.Fwd[u], func(v topo.NodeID) int { return abs.F[v] }), conc.G.Name(u)}
	}
	absBehavior := func(c topo.NodeID) behavior {
		lbl := srp.MapAttr(abst.P, absSol.Label[c], absNorm)
		return behavior{lbl, fwdGroups(absSol.Fwd[c], func(v topo.NodeID) int { return groupOfCopy[v] }), abst.G.Name(c)}
	}

	// Labels are compared up to the comparison relation (≈): when a node has
	// several equally-good choices the SRP definition allows any of them, so
	// two tied labels with different (but rank-equal) contents correspond.
	// Rank-equivalence of effective abstractions guarantees ≈ is preserved
	// by h, and every §4.4 property depends only on fwd and rank.
	sameBehavior := func(x, y behavior) bool {
		if x.fwd != y.fwd {
			return false
		}
		if x.label == nil || y.label == nil {
			return x.label == nil && y.label == nil
		}
		return conc.P.Compare(x.label, y.label) == 0
	}

	for gi, members := range abs.Groups {
		copies := abs.Copies[gi]
		memberBs := make([]behavior, 0, len(members))
		for _, u := range members {
			memberBs = append(memberBs, concBehavior(u))
		}
		copyBs := make([]behavior, 0, len(copies))
		for _, c := range copies {
			copyBs = append(copyBs, absBehavior(c))
		}
		// Every concrete behavior must be realized by some copy
		// (label-equivalence, concrete -> abstract direction).
		for _, mb := range memberBs {
			if !anyMatch(mb, copyBs, sameBehavior) {
				return fmt.Errorf("equiv: group %d: concrete behavior of %s unmatched by any copy\n  concrete: label=%v fwd=%s\n  copies: %v",
					gi, mb.who, mb.label, mb.fwd, behaviorList(copyBs))
			}
		}
		// Every copy's behavior must occur concretely (abstract ->
		// concrete direction; keeps the abstraction from inventing
		// behaviors).
		for _, cb := range copyBs {
			if !anyMatch(cb, memberBs, sameBehavior) {
				return fmt.Errorf("equiv: group %d: abstract behavior of %s not realized concretely\n  abstract: label=%v fwd=%s\n  members: %v",
					gi, cb.who, cb.label, cb.fwd, behaviorList(memberBs))
			}
		}
	}
	return nil
}

// behavior is a node's observable role in a solution: its (normalised)
// label, the set of groups it forwards into, and its name for diagnostics.
type behavior struct {
	label srp.Attr
	fwd   string
	who   string
}

func anyMatch(b behavior, in []behavior, same func(x, y behavior) bool) bool {
	for _, o := range in {
		if same(b, o) {
			return true
		}
	}
	return false
}

func behaviorList(bs []behavior) []string {
	out := make([]string, 0, len(bs))
	for _, b := range bs {
		out = append(out, fmt.Sprintf("{%s: label=%v fwd=%s}", b.who, b.label, b.fwd))
	}
	sort.Strings(out)
	return out
}

// fwdGroups renders the set of groups a node forwards into.
func fwdGroups(fwd []topo.NodeID, groupOf func(topo.NodeID) int) string {
	set := make(map[int]bool)
	for _, v := range fwd {
		set[groupOf(v)] = true
	}
	gs := make([]int, 0, len(set))
	for g := range set {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	return fmt.Sprint(gs)
}

// CheckAcrossSolutions verifies CP-equivalence allowing for multiple stable
// solutions: it solves both instances under several activation orders and
// requires every concrete solution to have an equivalent abstract solution
// and vice versa (the bisimulation of Theorem 4.5). numSeeds bounds the
// exploration.
func CheckAcrossSolutions(conc *srp.Instance, abst *srp.Instance, abs *core.Abstraction, numSeeds int) error {
	concSols := srp.SolveAll(conc, numSeeds)
	absSols := srp.SolveAll(abst, numSeeds)
	if len(concSols) == 0 {
		return fmt.Errorf("equiv: concrete network has no stable solution")
	}
	if len(absSols) == 0 {
		return fmt.Errorf("equiv: abstract network has no stable solution")
	}
	for i, cs := range concSols {
		matched := false
		var lastErr error
		for _, as := range absSols {
			if err := Check(conc, cs, abst, as, abs); err == nil {
				matched = true
				break
			} else {
				lastErr = err
			}
		}
		if !matched {
			return fmt.Errorf("equiv: concrete solution %d has no equivalent abstract solution: %w", i, lastErr)
		}
	}
	for i, as := range absSols {
		matched := false
		var lastErr error
		for _, cs := range concSols {
			if err := Check(conc, cs, abst, as, abs); err == nil {
				matched = true
				break
			} else {
				lastErr = err
			}
		}
		if !matched {
			return fmt.Errorf("equiv: abstract solution %d has no equivalent concrete solution: %w", i, lastErr)
		}
	}
	return nil
}
