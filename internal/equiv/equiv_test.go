package equiv

import (
	"testing"

	"bonsai/internal/core"
	"bonsai/internal/protocols"
	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

// ripPair builds a concrete 4-node diamond and its correct 3-node
// abstraction under RIP, returning solved instances.
func ripPair(t *testing.T) (*srp.Instance, *srp.Solution, *srp.Instance, *srp.Solution, *core.Abstraction) {
	t.Helper()
	g := topo.New()
	a, b1, b2, d := g.AddNode("a"), g.AddNode("b1"), g.AddNode("b2"), g.AddNode("d")
	g.AddLink(a, b1)
	g.AddLink(a, b2)
	g.AddLink(b1, d)
	g.AddLink(b2, d)
	key := func(u, v topo.NodeID) core.EdgeKey { return core.EdgeKey{Static: true, ACLPermit: true} }
	abs := core.FindAbstraction(g, d, core.Options{Mode: core.ModeEffective, EdgeKey: key})
	conc := &srp.Instance{G: g, Dest: d, P: &protocols.RIP{}}
	abst := &srp.Instance{G: abs.AbsG, Dest: abs.AbsDest, P: &protocols.RIP{}}
	cs, err := srp.Solve(conc)
	if err != nil {
		t.Fatal(err)
	}
	as, err := srp.Solve(abst)
	if err != nil {
		t.Fatal(err)
	}
	return conc, cs, abst, as, abs
}

func TestCheckAcceptsCorrectAbstraction(t *testing.T) {
	conc, cs, abst, as, abs := ripPair(t)
	if err := Check(conc, cs, abst, as, abs); err != nil {
		t.Fatal(err)
	}
	if err := CheckAcrossSolutions(conc, abst, abs, 4); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDetectsWrongLabel(t *testing.T) {
	conc, cs, abst, as, abs := ripPair(t)
	// Corrupt the abstract middle label: hop count 5 instead of 1.
	bad := &srp.Solution{Label: append([]srp.Attr(nil), as.Label...), Fwd: as.Fwd}
	mid, _ := abs.AbsG.Lookup("~b1")
	bad.Label[mid] = 5
	if Check(conc, cs, abst, bad, abs) == nil {
		t.Fatal("corrupted label accepted")
	}
}

func TestCheckDetectsWrongForwarding(t *testing.T) {
	conc, cs, abst, as, abs := ripPair(t)
	bad := &srp.Solution{Label: as.Label, Fwd: append([][]topo.NodeID(nil), as.Fwd...)}
	mid, _ := abs.AbsG.Lookup("~b1")
	aTop, _ := abs.AbsG.Lookup("~a")
	bad.Fwd[mid] = []topo.NodeID{aTop} // middle forwarding up instead of down
	if Check(conc, cs, abst, bad, abs) == nil {
		t.Fatal("corrupted forwarding accepted")
	}
}

func TestCheckDetectsMissingRoute(t *testing.T) {
	conc, cs, abst, as, abs := ripPair(t)
	bad := &srp.Solution{Label: append([]srp.Attr(nil), as.Label...), Fwd: append([][]topo.NodeID(nil), as.Fwd...)}
	top, _ := abs.AbsG.Lookup("~a")
	bad.Label[top] = nil
	bad.Fwd[top] = nil
	if Check(conc, cs, abst, bad, abs) == nil {
		t.Fatal("missing abstract route accepted")
	}
	_ = as
}
