// Package benchrun defines the paper's benchmark suite (Table 1, Figures
// 11/12, and the hot-path micro-benchmarks) as named, reusable cases so that
// `go test -bench` at the repository root and cmd/bonsai-bench (the JSON
// perf harness) execute the same code.
//
// Case functions are plain testing.B harnesses; custom metrics recorded via
// b.ReportMetric surface in testing.BenchmarkResult.Extra and are written to
// BENCH_compress.json by the harness.
package benchrun

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"bonsai"
	"bonsai/internal/bdd"
	"bonsai/internal/build"
	"bonsai/internal/config"
	"bonsai/internal/core"
	"bonsai/internal/ec"
	"bonsai/internal/journal"
	"bonsai/internal/netgen"
	"bonsai/internal/policy"
	"bonsai/internal/server"
	"bonsai/internal/verify"
)

// Case is one named benchmark.
type Case struct {
	Name string
	F    func(b *testing.B)
}

// CompressSet benchmarks compressing the network's destination classes once
// per iteration (total cost for the class set, not per EC). With dedup, the
// Builder's cross-EC cache serves duplicate and symmetric classes (the cache
// is reset every iteration so each measures a cold full set); without it,
// every class is compressed independently via CompressFresh — the ablation
// baseline the ≥5x dedup claim is measured against. maxClasses > 0 samples
// the class set.
func CompressSet(gen func() *config.Network, maxClasses int, dedup bool) func(b *testing.B) {
	return func(b *testing.B) {
		bd, err := build.New(gen())
		if err != nil {
			b.Fatal(err)
		}
		classes := bd.Classes()
		if maxClasses > 0 && len(classes) > maxClasses {
			classes = classes[:maxClasses]
		}
		ctx := context.Background()
		comp := bd.NewCompiler(true)
		// Warm BDD tables (the paper reports BDD build time separately).
		if _, err := bd.CompressFresh(ctx, comp, classes[0]); err != nil {
			b.Fatal(err)
		}
		var last *core.Abstraction
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bd.InvalidateAbstractionCache()
			for _, cls := range classes {
				var abs *core.Abstraction
				if dedup {
					abs, err = bd.Compress(ctx, comp, cls)
				} else {
					abs, err = bd.CompressFresh(ctx, comp, cls)
				}
				if err != nil {
					b.Fatal(err)
				}
				last = abs
			}
		}
		b.StopTimer()
		st := bd.AbstractionCacheStats()
		b.ReportMetric(float64(len(classes)), "classes")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(classes)), "ns/class")
		b.ReportMetric(float64(last.NumAbstractNodes()), "absNodes")
		b.ReportMetric(float64(last.NumAbstractEdges()), "absLinks")
		b.ReportMetric(float64(bd.G.NumNodes())/float64(last.NumAbstractNodes()), "nodeRatio")
		reportBDD(b, comp.M.Stats())
		if dedup {
			b.ReportMetric(float64(st.Fresh), "freshAbs")
			b.ReportMetric(float64(st.Transported), "transportedAbs")
			b.ReportMetric(float64(st.Served), "cacheServed")
		}
	}
}

// FreshClass benchmarks CompressFresh on one destination class with warm
// BDD tables: the raw Algorithm 1 hot path (refinement plus assembly),
// isolated from policy compilation and from the cross-EC cache. ns/class and
// the harness's allocs-per-op are the scaling metrics of the refinement
// engine itself; CompressSet measures whole class sets.
func FreshClass(gen func() *config.Network, classIdx int) func(b *testing.B) {
	return func(b *testing.B) {
		bd, err := build.New(gen())
		if err != nil {
			b.Fatal(err)
		}
		classes := bd.Classes()
		cls := classes[classIdx%len(classes)]
		ctx := context.Background()
		comp := bd.NewCompiler(true)
		// Warm the BDD and relation caches (the paper reports BDD build time
		// separately); every timed iteration measures refinement alone.
		if _, err := bd.CompressFresh(ctx, comp, cls); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bd.CompressFresh(ctx, comp, cls); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/class")
		reportBDD(b, comp.M.Stats())
	}
}

// reportBDD surfaces the BDD layer's capacity and op-cache behavior next to
// each case's timing: the final unique-table node count is the working-set
// size the SoA layout has to hold, and the overwrite rate (direct-mapped
// cache fills that evicted a live entry, per miss) is the thrash signal that
// says when the op caches are undersized for the workload.
func reportBDD(b *testing.B, s bdd.Stats) {
	b.ReportMetric(float64(s.Nodes), "bddNodes")
	if s.CacheMisses > 0 {
		b.ReportMetric(float64(s.CacheOverwrites)/float64(s.CacheMisses), "bddOverwriteRate")
	}
}

// Fig12 benchmarks one Figure-12 point: all-pairs reachability with
// per-query certification, concrete versus compressed.
func Fig12(gen func() *config.Network, bonsai bool, maxClasses int) func(b *testing.B) {
	return func(b *testing.B) {
		bd, err := build.New(gen())
		if err != nil {
			b.Fatal(err)
		}
		opts := verify.Options{MaxClasses: maxClasses, Workers: 1, PerPairCertification: true}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Each iteration measures a cold run: without this, iterations
			// after the first would serve every abstraction from the warm
			// cross-EC cache and overstate the compressed-side speedup.
			bd.InvalidateAbstractionCache()
			var res *verify.Result
			if bonsai {
				res, err = verify.AllPairsBonsai(context.Background(), bd, opts)
			} else {
				res, err = verify.AllPairsConcrete(context.Background(), bd, opts)
			}
			if err != nil {
				b.Fatal(err)
			}
			if res.ReachablePairs != res.Pairs {
				b.Fatalf("reachability regression: %v", res)
			}
		}
	}
}

// BuildAdder builds the sum and final carry of an nbits ripple-carry adder
// over interleaved operand variables — a standard ITE/apply-heavy BDD
// workload whose intermediate diagrams force deep recursion and many cache
// probes. It is the single definition of the adder circuit: both the JSON
// baseline's bdd/adder64 case and internal/bdd's micro-benchmarks use it,
// so their numbers stay comparable.
func BuildAdder(m *bdd.Manager, nbits int) (sum, carry bdd.Node) {
	carry = bdd.False
	for j := 0; j < nbits; j++ {
		x, y := m.Var(2*j), m.Var(2*j+1)
		sum = m.Xor(m.Xor(x, y), carry)
		carry = m.Or(m.And(x, y), m.And(carry, m.Or(x, y)))
	}
	return sum, carry
}

// BDDAdder benchmarks the BDD manager's operation caches on a ripple-carry
// adder built from scratch every iteration (manager construction,
// unique-table growth, apply/ITE traffic, one SatCount).
func BDDAdder(nbits int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var last bdd.Stats
		for i := 0; i < b.N; i++ {
			m := bdd.New(2 * nbits)
			_, carry := BuildAdder(m, nbits)
			if m.SatCount(carry) == 0 {
				b.Fatal("unsatisfiable carry")
			}
			last = m.Stats()
		}
		reportBDD(b, last)
	}
}

// BDDVec benchmarks the batched vector operators against the element-wise
// scalar loop on the policy compiler's workload shape (paper Figure 10): a
// chain of guarded constant assignments into a width-bit local-preference
// vector (ITEVec), masked by a keep guard (AndVec) and bound to output
// variables (EqVec). The batched/scalar pair of cases in BENCH JSON is the
// standing record of the vector-apply win; node-identity of the two paths
// is enforced by TestVecBatchedMatchesScalar in internal/bdd.
func BDDVec(width int, batched bool) func(b *testing.B) {
	return func(b *testing.B) {
		m := bdd.New(12 + width)
		outs := make([]int, width)
		for j := range outs {
			outs[j] = 12 + j
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Iteration-varying constants keep the op caches missing the way
			// a real compile does; the guard structure reuses a fixed
			// variable pool so the unique table stays bounded.
			base := uint64(i)*2654435761 + 12345
			v := m.ConstVec(base&(1<<width-1), width)
			for k := 0; k < 6; k++ {
				f := m.And(m.Var(2*k), m.Or(m.Var(2*k+1), m.NVar((2*k+5)%12)))
				cv := m.ConstVec((base>>uint(k+3))&(1<<width-1), width)
				if batched {
					v = m.ITEVec(f, cv, v)
				} else {
					nv := make(bdd.Vec, width)
					for j := range v {
						nv[j] = m.ITE(f, cv[j], v[j])
					}
					v = nv
				}
			}
			var rel bdd.Node
			if batched {
				rel = m.EqVec(m.VarVec(outs), m.AndVec(m.Var(1), v))
			} else {
				rel = bdd.True
				for j := range v {
					rel = m.And(rel, m.Equiv(m.Var(outs[j]), m.And(m.Var(1), v[j])))
				}
			}
			if rel == bdd.False {
				b.Fatal("vector workload collapsed")
			}
		}
		b.StopTimer()
		reportBDD(b, m.Stats())
	}
}

// RelStoreRestart benchmarks process restart with and without the persisted
// relation store: each iteration rebuilds the network and compresses every
// class, with the warm variant first installing a previously serialized
// store so every class is served from cache instead of refined. The
// cold/warm ns/op ratio in BENCH JSON is the standing record of the
// warm-restart win (the >= 5x acceptance bar at fattree-2000 scale).
func RelStoreRestart(gen func() *config.Network, warm bool) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		var data []byte
		if warm {
			bd, err := build.New(gen())
			if err != nil {
				b.Fatal(err)
			}
			comp := bd.NewCompiler(true)
			for _, cls := range bd.Classes() {
				if _, err := bd.Compress(ctx, comp, cls); err != nil {
					b.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := bd.SaveRelationStore(&buf, comp); err != nil {
				b.Fatal(err)
			}
			data = buf.Bytes()
			b.ReportMetric(float64(len(data)), "storeBytes")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bd, err := build.New(gen())
			if err != nil {
				b.Fatal(err)
			}
			comp := bd.NewCompiler(true)
			if warm {
				if _, err := bd.LoadRelationStore(bytes.NewReader(data), comp); err != nil {
					b.Fatal(err)
				}
			}
			for _, cls := range bd.Classes() {
				if _, err := bd.Compress(ctx, comp, cls); err != nil {
					b.Fatal(err)
				}
			}
			if st := bd.AbstractionCacheStats(); warm && st.Fresh != 0 {
				b.Fatalf("warm restart ran %d fresh refinements", st.Fresh)
			}
		}
	}
}

// ApplyWarm benchmarks the incremental-update path on a warm engine: open
// and fully compress once outside the timer, then each iteration flaps the
// named link (down on even iterations, up on odd) via Engine.Apply. The
// re-compression of the invalidated classes happens off-timer (queries pay
// it lazily; the lazy-ns metric reports it). Compare ns/op against ColdOpen
// on the same network: the ratio is the speedup of updating a warm engine
// in place over rebuilding it, the >= 5x acceptance bar of the API
// redesign.
func ApplyWarm(gen func() *config.Network, linkA, linkB string) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		eng, err := bonsai.Open(gen(), bonsai.WithWorkers(1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
			b.Fatal(err)
		}
		link := []bonsai.LinkRef{{A: linkA, B: linkB}}
		var adopted, invalidated, lazyNs float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var d bonsai.Delta
			if i%2 == 0 {
				d.LinkDown = link
			} else {
				d.LinkUp = link
			}
			rep, err := eng.Apply(ctx, d)
			if err != nil {
				b.Fatal(err)
			}
			adopted += float64(rep.Adopted)
			invalidated += float64(rep.Invalidated)
			b.StopTimer()
			lazyStart := time.Now()
			if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
				b.Fatal(err)
			}
			lazyNs += float64(time.Since(lazyStart).Nanoseconds())
			b.StartTimer()
		}
		b.StopTimer()
		b.ReportMetric(adopted/float64(b.N), "adopted")
		b.ReportMetric(invalidated/float64(b.N), "invalidated")
		b.ReportMetric(lazyNs/float64(b.N), "lazy-recompress-ns")
	}
}

// ColdOpen benchmarks the baseline Apply replaces: build a fresh engine
// over the same network and compress every class from scratch.
func ColdOpen(gen func() *config.Network) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		cfg := gen()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng, err := bonsai.Open(cfg, bonsai.WithWorkers(1))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// WarmEngineQueries benchmarks the long-lived service workload of the
// ROADMAP: one warm engine answering query traffic across a configuration
// change. Each iteration runs nq compressed reachability queries, applies a
// link-down delta, runs nq more queries, and restores the link.
func WarmEngineQueries(gen func() *config.Network, linkA, linkB string, nq int) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		cfg := gen()
		eng, err := bonsai.Open(cfg, bonsai.WithWorkers(1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
			b.Fatal(err)
		}
		dests := eng.Classes()
		srcs := cfg.RouterNames()
		link := []bonsai.LinkRef{{A: linkA, B: linkB}}
		query := func(j int) {
			res, err := eng.Reach(ctx, srcs[(j*13)%len(srcs)], dests[(j*7)%len(dests)])
			if err != nil {
				b.Fatal(err)
			}
			_ = res
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < nq; j++ {
				query(j)
			}
			if _, err := eng.Apply(ctx, bonsai.Delta{LinkDown: link}); err != nil {
				b.Fatal(err)
			}
			for j := 0; j < nq; j++ {
				query(nq + j)
			}
			if _, err := eng.Apply(ctx, bonsai.Delta{LinkUp: link}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(2*nq), "queries/op")
	}
}

// ChurnStorm benchmarks sustained delta ingestion on a warm engine under a
// rolling link-flap storm: nLinks distinct links each flap (down, then back
// up) round-robin until deltas updates have been issued, so every storm ends
// with the topology restored. With stream=true the storm is fed through
// ApplyStream, whose coalescer cancels each flap before any invalidation;
// with stream=false every delta goes through a naive per-delta Apply — one
// topology rebuild plus one adoption sweep per delta, the baseline the
// >= 10x deltasPerSec acceptance bar is measured against. A concurrent
// sampler issues compressed reachability queries throughout and reports
// their p99 latency: the robustness claim is that query service stays
// responsive while the control plane churns.
func ChurnStorm(gen func() *config.Network, nLinks, deltas int, stream bool) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		cfg := gen()
		eng, err := bonsai.Open(cfg, bonsai.WithWorkers(1))
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
			b.Fatal(err)
		}
		links := make([]bonsai.LinkRef, 0, nLinks)
		for _, l := range cfg.Links {
			if !l.Down {
				links = append(links, bonsai.LinkRef{A: l.A, B: l.B})
			}
			if len(links) == nLinks {
				break
			}
		}
		if len(links) == 0 {
			b.Fatal("no links to flap")
		}
		// Down/up pairs, so a whole storm coalesces to the empty delta.
		storm := make([]bonsai.Delta, 0, deltas)
		for i := 0; len(storm)+1 < deltas; i++ {
			l := []bonsai.LinkRef{links[i%len(links)]}
			storm = append(storm, bonsai.Delta{LinkDown: l}, bonsai.Delta{LinkUp: l})
		}

		// Query sampler: compressed reachability in a loop, racing the storm.
		dests := eng.Classes()
		srcs := cfg.RouterNames()
		var latMu sync.Mutex
		var lat []time.Duration
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if _, err := eng.Reach(ctx, srcs[(j*13)%len(srcs)], dests[(j*7)%len(dests)]); err != nil {
					b.Error(err)
					return
				}
				d := time.Since(t0)
				latMu.Lock()
				lat = append(lat, d)
				latMu.Unlock()
				// Yield so the sampler shares the machine with the applier
				// instead of measuring contention with itself.
				time.Sleep(200 * time.Microsecond)
			}
		}()

		var received, coalesced float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if stream {
				ch := make(chan bonsai.Delta, len(storm))
				for _, d := range storm {
					ch <- d
				}
				close(ch)
				rep, err := eng.ApplyStream(ctx, ch)
				if err != nil {
					b.Fatal(err)
				}
				received += float64(rep.EditsReceived)
				coalesced += float64(rep.Coalesced)
			} else {
				for _, d := range storm {
					if _, err := eng.Apply(ctx, d); err != nil {
						b.Fatal(err)
					}
				}
				received += float64(len(storm))
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(b.N*len(storm))/b.Elapsed().Seconds(), "deltasPerSec")
		if received > 0 {
			b.ReportMetric(coalesced/received, "coalescedFrac")
		}
		latMu.Lock()
		defer latMu.Unlock()
		if len(lat) > 0 {
			slices.Sort(lat)
			b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99QueryNs")
			b.ReportMetric(float64(len(lat)), "queries")
		}
	}
}

// Cases returns the benchmark suite. Smoke mode shrinks networks and class
// samples so the whole suite finishes in well under a minute for CI.
func Cases(smoke bool) []Case {
	var cs []Case
	add := func(name string, f func(b *testing.B)) { cs = append(cs, Case{Name: name, F: f}) }

	fattreeKs := []int{12, 20, 30}
	ringNs := []int{100, 500, 1000}
	meshNs := []int{50, 150, 250}
	if smoke {
		fattreeKs = []int{4, 8}
		ringNs = []int{20, 60}
		meshNs = []int{20, 40}
	}
	// Networks are generated lazily inside each case: building them here
	// would keep every topology live for the whole run and distort the GC
	// behavior of later cases.
	for _, k := range fattreeKs {
		k := k
		gen := func() *config.Network { return netgen.Fattree(k, netgen.PolicyShortestPath) }
		name := fmt.Sprintf("table1a/fattree/nodes=%d", 5*k*k/4)
		add(name+"/dedup", CompressSet(gen, 0, true))
		add(name+"/independent", CompressSet(gen, 0, false))
	}
	for _, n := range ringNs {
		n := n
		gen := func() *config.Network { return netgen.Ring(n) }
		name := fmt.Sprintf("table1a/ring/nodes=%d", n)
		add(name+"/dedup", CompressSet(gen, 0, true))
		// Independent ring compression is O(diameter) per class; sample it.
		add(name+"/independent-sample", CompressSet(gen, 4, false))
	}
	for _, n := range meshNs {
		n := n
		gen := func() *config.Network { return netgen.FullMesh(n) }
		name := fmt.Sprintf("table1a/mesh/nodes=%d", n)
		add(name+"/dedup", CompressSet(gen, 0, true))
		add(name+"/independent-sample", CompressSet(gen, 8, false))
	}

	// Per-class scaling of the fresh compressor (the worklist refinement
	// engine): one class, warm BDD tables, networks past the Table-1a sizes.
	freshFatKs := []int{20, 40} // 500 and 2000 nodes
	freshRings := []int{1000, 2000}
	if smoke {
		freshFatKs = []int{8}
		freshRings = []int{100}
	}
	for _, k := range freshFatKs {
		k := k
		gen := func() *config.Network { return netgen.Fattree(k, netgen.PolicyShortestPath) }
		add(fmt.Sprintf("fresh/fattree/nodes=%d/class", 5*k*k/4), FreshClass(gen, 0))
	}
	for _, n := range freshRings {
		n := n
		gen := func() *config.Network { return netgen.Ring(n) }
		add(fmt.Sprintf("fresh/ring/nodes=%d/class", n), FreshClass(gen, 0))
	}
	slOpts := netgen.SpineLeafOptions{Spines: 16, Leaves: 160, ExtPerLeaf: 4, PrefixesPerExt: 2}
	if smoke {
		slOpts = netgen.SpineLeafOptions{Spines: 4, Leaves: 12, ExtPerLeaf: 2, PrefixesPerExt: 2}
	}
	slNodes := slOpts.Spines + slOpts.Leaves*(1+slOpts.ExtPerLeaf)
	genSL := func() *config.Network { return netgen.SpineLeaf(slOpts) }
	add(fmt.Sprintf("fresh/spineleaf/nodes=%d/class", slNodes), FreshClass(genSL, 0))

	// Streaming pipeline: full-set compression through the public engine,
	// unbounded versus a memory budget of half the unbounded footprint (the
	// bounded-memory acceptance configuration), plus the scheduler's
	// fingerprint grouping against the old blocking fan-out.
	streamK := 40 // 2000 nodes
	if smoke {
		streamK = 12 // 180 nodes
	}
	genStream := func() *config.Network { return netgen.Fattree(streamK, netgen.PolicyShortestPath) }
	streamNodes := 5 * streamK * streamK / 4
	add(fmt.Sprintf("stream/fattree/nodes=%d/unbounded", streamNodes), StreamSet(genStream, false))
	add(fmt.Sprintf("stream/fattree/nodes=%d/budget-half", streamNodes), StreamSet(genStream, true))
	streamRing := 2000
	if smoke {
		streamRing = 100
	}
	genStreamRing := func() *config.Network { return netgen.Ring(streamRing) }
	add(fmt.Sprintf("stream/ring/nodes=%d/unbounded", streamRing), StreamSet(genStreamRing, false))
	add(fmt.Sprintf("stream/ring/nodes=%d/budget-half", streamRing), StreamSet(genStreamRing, true))
	add(fmt.Sprintf("sched/spineleaf/nodes=%d/grouped", slNodes), SchedFanOut(genSL, 4, true))
	add(fmt.Sprintf("sched/spineleaf/nodes=%d/ungrouped", slNodes), SchedFanOut(genSL, 4, false))

	dcOpts := netgen.DCOptions{}
	if smoke {
		dcOpts = netgen.DCOptions{Clusters: 3, LeavesPerClus: 6, Cores: 4, TagGroups: 12}
	}
	dcMax := 64
	if smoke {
		dcMax = 8
	}
	genDC := func() *config.Network { return netgen.Datacenter(dcOpts) }
	add("table1b/datacenter/dedup", CompressSet(genDC, dcMax, true))
	add("table1b/datacenter/independent-sample", CompressSet(genDC, 8, false))
	if !smoke {
		add("table1b/wan/dedup", CompressSet(func() *config.Network { return netgen.WAN(netgen.WANOptions{}) }, 32, true))
	}

	fig12Fattree := []int{4, 6, 8}
	fig12Mesh := []int{10, 20, 40}
	fig12Ring := []int{20, 40, 80}
	if smoke {
		fig12Fattree = []int{4}
		fig12Mesh = []int{10}
		fig12Ring = []int{20}
	}
	for _, k := range fig12Fattree {
		k := k
		gen := func() *config.Network { return netgen.Fattree(k, netgen.PolicyShortestPath) }
		for _, mode := range []string{"concrete", "bonsai"} {
			add(fmt.Sprintf("fig12/fattree/nodes=%d/%s", 5*k*k/4, mode), Fig12(gen, mode == "bonsai", 8))
		}
	}
	for _, n := range fig12Mesh {
		n := n
		gen := func() *config.Network { return netgen.FullMesh(n) }
		for _, mode := range []string{"concrete", "bonsai"} {
			add(fmt.Sprintf("fig12/mesh/nodes=%d/%s", n, mode), Fig12(gen, mode == "bonsai", 8))
		}
	}
	for _, n := range fig12Ring {
		n := n
		gen := func() *config.Network { return netgen.Ring(n) }
		for _, mode := range []string{"concrete", "bonsai"} {
			add(fmt.Sprintf("fig12/ring/nodes=%d/%s", n, mode), Fig12(gen, mode == "bonsai", 8))
		}
	}

	// Incremental-update and warm-engine scenarios over the public bonsai
	// API: the acceptance bar is apply-warm beating cold-open by >= 5x on
	// fattree-180 for a single-link delta.
	applyK, nq := 12, 16
	aggName := "agg-5-0"
	if smoke {
		applyK, nq = 4, 4
		aggName = "agg-3-0"
	}
	genApply := func() *config.Network { return netgen.Fattree(applyK, netgen.PolicyShortestPath) }
	applyNodes := 5 * applyK * applyK / 4
	add(fmt.Sprintf("incremental/fattree/nodes=%d/apply-warm", applyNodes), ApplyWarm(genApply, aggName, "core-0"))
	add(fmt.Sprintf("incremental/fattree/nodes=%d/cold-open", applyNodes), ColdOpen(genApply))
	add(fmt.Sprintf("warm-engine/fattree/nodes=%d/queries=%d", applyNodes, 2*nq), WarmEngineQueries(genApply, aggName, "core-0", nq))

	// Churn: a rolling link-flap storm against a warm engine, streamed with
	// coalescing versus naive per-delta applies. The acceptance bar is the
	// stream beating naive by >= 10x deltasPerSec on the 2000-node fat tree
	// while the p99 of concurrent compressed queries stays serviceable.
	churnK, churnLinks, churnDeltas := 40, 100, 200
	if smoke {
		churnK, churnLinks, churnDeltas = 8, 16, 64
	}
	genChurn := func() *config.Network { return netgen.Fattree(churnK, netgen.PolicyShortestPath) }
	churnNodes := 5 * churnK * churnK / 4
	add(fmt.Sprintf("churn/fattree/nodes=%d/stream", churnNodes), ChurnStorm(genChurn, churnLinks, churnDeltas, true))
	add(fmt.Sprintf("churn/fattree/nodes=%d/naive", churnNodes), ChurnStorm(genChurn, churnLinks, churnDeltas, false))

	// Durability: the WAL's raw append cost per fsync policy, the daemon's
	// full acked-apply path (validate + journal + fsync + apply), and crash
	// recovery wall-clock versus journal tail length — the fsync trade-off
	// and recovery-time tables in README/EXPERIMENTS come from these.
	for _, sp := range []journal.SyncPolicy{journal.SyncAlways, journal.SyncInterval, journal.SyncNever} {
		sp := sp
		add(fmt.Sprintf("journal/append/fsync=%s", sp), JournalAppend(sp))
		add(fmt.Sprintf("journal/acked-apply/fattree/nodes=%d/fsync=%s", applyNodes, sp),
			AckedApply(genApply, sp))
	}
	recK, recTails := 40, []int{0, 10_000} // fattree-2000, the paper's scale
	if smoke {
		recK, recTails = 8, []int{0, 1000}
	}
	genRec := func() *config.Network { return netgen.Fattree(recK, netgen.PolicyShortestPath) }
	for _, n := range recTails {
		add(fmt.Sprintf("journal/recover/fattree/nodes=%d/tail=%d", 5*recK*recK/4, n),
			RecoverTail(genRec, n))
	}

	add("bdd/adder64", BDDAdder(64))
	add("bdd/vec16/batched", BDDVec(16, true))
	add("bdd/vec16/scalar", BDDVec(16, false))

	// Warm restart from the persisted relation store versus cold compile of
	// the same class set. Non-smoke runs at fattree-500; the fattree-2000
	// acceptance point is recorded in EXPERIMENTS.md (it is too slow for a
	// per-run baseline).
	relK := 20
	if smoke {
		relK = 8
	}
	genRel := func() *config.Network { return netgen.Fattree(relK, netgen.PolicyShortestPath) }
	add(fmt.Sprintf("relstore/fattree/nodes=%d/cold", 5*relK*relK/4), RelStoreRestart(genRel, false))
	add(fmt.Sprintf("relstore/fattree/nodes=%d/warm", 5*relK*relK/4), RelStoreRestart(genRel, true))
	return cs
}

// JournalAppend measures raw write-ahead journal throughput under one fsync
// policy with a realistic single-flap delta payload. SyncAlways is the
// power-loss-durable floor every acked apply pays; SyncNever is the
// kill-9-durable ceiling.
func JournalAppend(sync journal.SyncPolicy) func(b *testing.B) {
	return func(b *testing.B) {
		j, err := journal.Open(b.TempDir(), journal.Options{Sync: sync})
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		payload := []byte(`{"link_down":[{"a":"agg-1-0","b":"core-0"}]}`)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := j.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appendsPerSec")
	}
}

// AckedApply measures the daemon's end-to-end durable apply path over HTTP:
// decode, validate, journal (with the policy's fsync), apply, ack.
// Checkpointing is deferred to drain so the journal cost is not amortized
// away mid-run.
func AckedApply(gen func() *config.Network, sync journal.SyncPolicy) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		s := server.New(server.Config{DataDir: b.TempDir(), Fsync: sync, CheckpointEvery: -1})
		defer s.Drain()
		hs := httptest.NewServer(s)
		defer hs.Close()
		c := server.NewClient(hs.URL)
		cfg := gen()
		if err := c.OpenNetwork(ctx, "bench", cfg); err != nil {
			b.Fatal(err)
		}
		l := []bonsai.LinkRef{{A: cfg.Links[0].A, B: cfg.Links[0].B}}
		flap := [2]bonsai.Delta{{LinkDown: l}, {LinkUp: l}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Apply(ctx, "bench", flap[i%2]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ackedPerSec")
	}
}

// RecoverTail measures crash-recovery wall clock: load the checkpoint, parse
// its config, open an engine, and replay a journal tail of the given length
// through the coalescing stream path — exactly what the daemon does per
// tenant at startup. tail=0 isolates the checkpoint-only cost; the tail
// variant adds the journal read + decode + coalesced apply.
func RecoverTail(gen func() *config.Network, tail int) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		dir := b.TempDir()
		cfg := gen()
		var cfgText bytes.Buffer
		if err := bonsai.Print(&cfgText, cfg); err != nil {
			b.Fatal(err)
		}
		j, err := journal.Open(dir, journal.Options{Sync: journal.SyncNever})
		if err != nil {
			b.Fatal(err)
		}
		if err := j.WriteCheckpoint(0, cfgText.Bytes()); err != nil {
			b.Fatal(err)
		}
		nLinks := 100
		if nLinks > len(cfg.Links) {
			nLinks = len(cfg.Links)
		}
		for i := 0; i < tail; i++ {
			l := []bonsai.LinkRef{{A: cfg.Links[i%nLinks].A, B: cfg.Links[i%nLinks].B}}
			d := bonsai.Delta{LinkDown: l}
			if (i/nLinks)%2 == 1 {
				d = bonsai.Delta{LinkUp: l}
			}
			payload, err := json.Marshal(d)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := j.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ck, err := journal.LoadCheckpoint(dir)
			if err != nil {
				b.Fatal(err)
			}
			net, err := bonsai.ParseString(string(ck.Payload))
			if err != nil {
				b.Fatal(err)
			}
			eng, err := bonsai.Open(net)
			if err != nil {
				b.Fatal(err)
			}
			var deltas []bonsai.Delta
			if _, err := journal.ReplayDir(dir, ck.Seq, func(_ uint64, payload []byte) error {
				var d bonsai.Delta
				if err := json.Unmarshal(payload, &d); err != nil {
					return err
				}
				deltas = append(deltas, d)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			if len(deltas) > 0 {
				if _, err := eng.ApplyAll(ctx, deltas); err != nil {
					b.Fatal(err)
				}
			}
			eng.Close()
		}
		b.StopTimer()
		if tail > 0 {
			b.ReportMetric(float64(tail)*float64(b.N)/b.Elapsed().Seconds(), "replayedPerSec")
		}
	}
}

// PeakHeap samples runtime.ReadMemStats on a fixed interval and records
// the largest HeapAlloc observed. The bench harness wraps every case with
// one so BENCH JSON carries a per-case peak-memory figure next to ns/op —
// the regression signal for the bounded-memory streaming pipeline.
// Sampling costs one brief stop-the-world per interval, identical across
// the cases being compared.
type PeakHeap struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

// StartPeakHeap begins sampling at the given interval (<= 0 means 2ms).
func StartPeakHeap(interval time.Duration) *PeakHeap {
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	p := &PeakHeap{stop: make(chan struct{}), done: make(chan struct{})}
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > p.peak {
			p.peak = ms.HeapAlloc
		}
	}
	sample()
	go func() {
		defer close(p.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-p.stop:
				sample()
				return
			}
		}
	}()
	return p
}

// Stop ends sampling and returns the peak HeapAlloc in bytes.
func (p *PeakHeap) Stop() uint64 {
	close(p.stop)
	<-p.done
	return p.peak
}

// StreamSet benchmarks full-class-set compression through the public
// streaming pipeline (lazy enumeration -> fingerprint-grouped scheduler ->
// bounded store), one cold engine per iteration. With halfBudget, the
// abstraction store is bounded to half the unbounded footprint (measured
// on a warm-up pass) — the acceptance configuration: peak memory must
// drop while wall-clock stays within 1.2x of the unbounded run, because
// eviction only ever touches entries the stream has finished with while
// pinned transport seeds keep the symmetry fast path alive.
func StreamSet(gen func() *config.Network, halfBudget bool) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		cfg := gen()
		var budget int64
		if halfBudget {
			eng, err := bonsai.Open(cfg, bonsai.WithWorkers(1))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
				b.Fatal(err)
			}
			budget = eng.Stats().LiveBytes / 2
			eng.Close()
			// Collect the warm-up engine before sampling starts, so the
			// peakHeapBytes metric below measures the bounded run alone.
			runtime.GC()
		}
		var st bonsai.CacheStats
		classes := 0
		sampler := StartPeakHeap(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opts := []bonsai.Option{bonsai.WithWorkers(1)}
			if budget > 0 {
				opts = append(opts, bonsai.WithMemoryBudget(budget))
			}
			eng, err := bonsai.Open(cfg, opts...)
			if err != nil {
				b.Fatal(err)
			}
			s, err := eng.CompressStream(ctx, bonsai.ClassSelector{})
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for range s.Results() {
				n++
			}
			if err := s.Err(); err != nil {
				b.Fatal(err)
			}
			classes = n
			st = eng.Stats()
			eng.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(sampler.Stop()), "peakHeapBytes")
		b.ReportMetric(float64(classes), "classes")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(max(classes, 1)), "ns/class")
		b.ReportMetric(float64(st.PeakBytes), "storePeakBytes")
		b.ReportMetric(float64(st.Evictions), "storeEvictions")
		if st.DuplicateFresh != 0 {
			b.Fatalf("duplicate fresh compressions: %+v", st)
		}
	}
}

// SchedFanOut benchmarks the class fan-out at the builder layer with the
// work-stealing scheduler, grouped by fingerprint versus ungrouped
// (followers block on the single-flight slot, the pre-scheduler shape).
// The delta between the two cases is the wall-clock win of deliberate
// leader-first ordering; it grows with cores and with the share of
// identity-shared classes.
func SchedFanOut(gen func() *config.Network, workers int, grouped bool) func(b *testing.B) {
	return func(b *testing.B) {
		bd, err := build.New(gen())
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		comps := make([]*policy.Compiler, workers)
		for i := range comps {
			comps[i] = bd.NewCompiler(true)
		}
		// Warm BDD tables.
		if _, err := bd.CompressFresh(ctx, comps[0], bd.Classes()[0]); err != nil {
			b.Fatal(err)
		}
		var key func(ec.Class) string
		if grouped {
			key = verify.FingerprintKey(bd)
		}
		classes := bd.Classes()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bd.InvalidateAbstractionCache()
			err := verify.ForEachClassKeyed(ctx, slices.Values(classes), workers, key,
				func(w int, cls ec.Class) error {
					_, err := bd.Compress(ctx, comps[w], cls)
					return err
				})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(len(classes)), "classes")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(classes)), "ns/class")
	}
}
