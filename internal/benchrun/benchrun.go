// Package benchrun defines the paper's benchmark suite (Table 1, Figures
// 11/12, and the hot-path micro-benchmarks) as named, reusable cases so that
// `go test -bench` at the repository root and cmd/bonsai-bench (the JSON
// perf harness) execute the same code.
//
// Case functions are plain testing.B harnesses; custom metrics recorded via
// b.ReportMetric surface in testing.BenchmarkResult.Extra and are written to
// BENCH_compress.json by the harness.
package benchrun

import (
	"fmt"
	"testing"

	"bonsai/internal/bdd"
	"bonsai/internal/build"
	"bonsai/internal/config"
	"bonsai/internal/core"
	"bonsai/internal/netgen"
	"bonsai/internal/verify"
)

// Case is one named benchmark.
type Case struct {
	Name string
	F    func(b *testing.B)
}

// CompressSet benchmarks compressing the network's destination classes once
// per iteration (total cost for the class set, not per EC). With dedup, the
// Builder's cross-EC cache serves duplicate and symmetric classes (the cache
// is reset every iteration so each measures a cold full set); without it,
// every class is compressed independently via CompressFresh — the ablation
// baseline the ≥5x dedup claim is measured against. maxClasses > 0 samples
// the class set.
func CompressSet(gen func() *config.Network, maxClasses int, dedup bool) func(b *testing.B) {
	return func(b *testing.B) {
		bd, err := build.New(gen())
		if err != nil {
			b.Fatal(err)
		}
		classes := bd.Classes()
		if maxClasses > 0 && len(classes) > maxClasses {
			classes = classes[:maxClasses]
		}
		comp := bd.NewCompiler(true)
		// Warm BDD tables (the paper reports BDD build time separately).
		if _, err := bd.CompressFresh(comp, classes[0]); err != nil {
			b.Fatal(err)
		}
		var last *core.Abstraction
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bd.InvalidateAbstractionCache()
			for _, cls := range classes {
				var abs *core.Abstraction
				if dedup {
					abs, err = bd.Compress(comp, cls)
				} else {
					abs, err = bd.CompressFresh(comp, cls)
				}
				if err != nil {
					b.Fatal(err)
				}
				last = abs
			}
		}
		b.StopTimer()
		fresh, transported, served := bd.AbstractionCacheStats()
		b.ReportMetric(float64(len(classes)), "classes")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(classes)), "ns/class")
		b.ReportMetric(float64(last.NumAbstractNodes()), "absNodes")
		b.ReportMetric(float64(last.NumAbstractEdges()), "absLinks")
		b.ReportMetric(float64(bd.G.NumNodes())/float64(last.NumAbstractNodes()), "nodeRatio")
		if dedup {
			b.ReportMetric(float64(fresh), "freshAbs")
			b.ReportMetric(float64(transported), "transportedAbs")
			b.ReportMetric(float64(served), "cacheServed")
		}
	}
}

// Fig12 benchmarks one Figure-12 point: all-pairs reachability with
// per-query certification, concrete versus compressed.
func Fig12(gen func() *config.Network, bonsai bool, maxClasses int) func(b *testing.B) {
	return func(b *testing.B) {
		bd, err := build.New(gen())
		if err != nil {
			b.Fatal(err)
		}
		opts := verify.Options{MaxClasses: maxClasses, Workers: 1, PerPairCertification: true}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Each iteration measures a cold run: without this, iterations
			// after the first would serve every abstraction from the warm
			// cross-EC cache and overstate the compressed-side speedup.
			bd.InvalidateAbstractionCache()
			var res *verify.Result
			if bonsai {
				res, err = verify.AllPairsBonsai(bd, opts)
			} else {
				res, err = verify.AllPairsConcrete(bd, opts)
			}
			if err != nil {
				b.Fatal(err)
			}
			if res.ReachablePairs != res.Pairs {
				b.Fatalf("reachability regression: %v", res)
			}
		}
	}
}

// BuildAdder builds the sum and final carry of an nbits ripple-carry adder
// over interleaved operand variables — a standard ITE/apply-heavy BDD
// workload whose intermediate diagrams force deep recursion and many cache
// probes. It is the single definition of the adder circuit: both the JSON
// baseline's bdd/adder64 case and internal/bdd's micro-benchmarks use it,
// so their numbers stay comparable.
func BuildAdder(m *bdd.Manager, nbits int) (sum, carry bdd.Node) {
	carry = bdd.False
	for j := 0; j < nbits; j++ {
		x, y := m.Var(2*j), m.Var(2*j+1)
		sum = m.Xor(m.Xor(x, y), carry)
		carry = m.Or(m.And(x, y), m.And(carry, m.Or(x, y)))
	}
	return sum, carry
}

// BDDAdder benchmarks the BDD manager's operation caches on a ripple-carry
// adder built from scratch every iteration (manager construction,
// unique-table growth, apply/ITE traffic, one SatCount).
func BDDAdder(nbits int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := bdd.New(2 * nbits)
			_, carry := BuildAdder(m, nbits)
			if m.SatCount(carry) == 0 {
				b.Fatal("unsatisfiable carry")
			}
		}
	}
}

// Cases returns the benchmark suite. Smoke mode shrinks networks and class
// samples so the whole suite finishes in well under a minute for CI.
func Cases(smoke bool) []Case {
	var cs []Case
	add := func(name string, f func(b *testing.B)) { cs = append(cs, Case{Name: name, F: f}) }

	fattreeKs := []int{12, 20, 30}
	ringNs := []int{100, 500, 1000}
	meshNs := []int{50, 150, 250}
	if smoke {
		fattreeKs = []int{4, 8}
		ringNs = []int{20, 60}
		meshNs = []int{20, 40}
	}
	// Networks are generated lazily inside each case: building them here
	// would keep every topology live for the whole run and distort the GC
	// behavior of later cases.
	for _, k := range fattreeKs {
		k := k
		gen := func() *config.Network { return netgen.Fattree(k, netgen.PolicyShortestPath) }
		name := fmt.Sprintf("table1a/fattree/nodes=%d", 5*k*k/4)
		add(name+"/dedup", CompressSet(gen, 0, true))
		add(name+"/independent", CompressSet(gen, 0, false))
	}
	for _, n := range ringNs {
		n := n
		gen := func() *config.Network { return netgen.Ring(n) }
		name := fmt.Sprintf("table1a/ring/nodes=%d", n)
		add(name+"/dedup", CompressSet(gen, 0, true))
		// Independent ring compression is O(diameter) per class; sample it.
		add(name+"/independent-sample", CompressSet(gen, 4, false))
	}
	for _, n := range meshNs {
		n := n
		gen := func() *config.Network { return netgen.FullMesh(n) }
		name := fmt.Sprintf("table1a/mesh/nodes=%d", n)
		add(name+"/dedup", CompressSet(gen, 0, true))
		add(name+"/independent-sample", CompressSet(gen, 8, false))
	}

	dcOpts := netgen.DCOptions{}
	if smoke {
		dcOpts = netgen.DCOptions{Clusters: 3, LeavesPerClus: 6, Cores: 4, TagGroups: 12}
	}
	dcMax := 64
	if smoke {
		dcMax = 8
	}
	genDC := func() *config.Network { return netgen.Datacenter(dcOpts) }
	add("table1b/datacenter/dedup", CompressSet(genDC, dcMax, true))
	add("table1b/datacenter/independent-sample", CompressSet(genDC, 8, false))
	if !smoke {
		add("table1b/wan/dedup", CompressSet(func() *config.Network { return netgen.WAN(netgen.WANOptions{}) }, 32, true))
	}

	fig12Fattree := []int{4, 6, 8}
	fig12Mesh := []int{10, 20, 40}
	fig12Ring := []int{20, 40, 80}
	if smoke {
		fig12Fattree = []int{4}
		fig12Mesh = []int{10}
		fig12Ring = []int{20}
	}
	for _, k := range fig12Fattree {
		k := k
		gen := func() *config.Network { return netgen.Fattree(k, netgen.PolicyShortestPath) }
		for _, mode := range []string{"concrete", "bonsai"} {
			add(fmt.Sprintf("fig12/fattree/nodes=%d/%s", 5*k*k/4, mode), Fig12(gen, mode == "bonsai", 8))
		}
	}
	for _, n := range fig12Mesh {
		n := n
		gen := func() *config.Network { return netgen.FullMesh(n) }
		for _, mode := range []string{"concrete", "bonsai"} {
			add(fmt.Sprintf("fig12/mesh/nodes=%d/%s", n, mode), Fig12(gen, mode == "bonsai", 8))
		}
	}
	for _, n := range fig12Ring {
		n := n
		gen := func() *config.Network { return netgen.Ring(n) }
		for _, mode := range []string{"concrete", "bonsai"} {
			add(fmt.Sprintf("fig12/ring/nodes=%d/%s", n, mode), Fig12(gen, mode == "bonsai", 8))
		}
	}

	add("bdd/adder64", BDDAdder(64))
	return cs
}
