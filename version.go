package bonsai

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// VersionInfo describes the running build of the bonsai module, assembled
// from the binary's embedded build metadata (debug.ReadBuildInfo). All
// binaries in this repository expose it via a -version flag, and bonsaid
// serves it at GET /version.
type VersionInfo struct {
	// Module is the module path; Version its resolved module version
	// ("(devel)" for a working-tree build).
	Module  string `json:"module"`
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision and Time are the VCS commit and its timestamp, when the
	// build embedded them; Dirty reports uncommitted local changes.
	Revision string `json:"revision,omitempty"`
	Time     string `json:"time,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
}

// Version reports the running build's metadata. It degrades gracefully: a
// binary built without module or VCS stamping still reports the toolchain.
func Version() VersionInfo {
	v := VersionInfo{Module: "bonsai", Version: "(devel)", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	if bi.Main.Path != "" {
		v.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		v.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.time":
			v.Time = s.Value
		case "vcs.modified":
			v.Dirty = s.Value == "true"
		}
	}
	return v
}

// String renders the info on one line, the way -version flags print it.
func (v VersionInfo) String() string {
	s := fmt.Sprintf("%s %s (%s", v.Module, v.Version, v.GoVersion)
	if v.Revision != "" {
		rev := v.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += ", " + rev
		if v.Dirty {
			s += "+dirty"
		}
	}
	return s + ")"
}
