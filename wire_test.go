package bonsai

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// roundTrip encodes v, decodes into a fresh value of the same type, and
// compares — the JSON wire contract bonsaid and its clients rely on.
func roundTrip[T any](t *testing.T, v T) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	var got T
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal %T: %v\n%s", v, err, b)
	}
	if !reflect.DeepEqual(v, got) {
		t.Fatalf("%T round-trip mismatch:\n sent %+v\n got  %+v\n wire %s", v, v, got, b)
	}
}

func mustPrefix(t *testing.T, s string) Prefix {
	t.Helper()
	p, err := ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDeltaRoundTrip(t *testing.T) {
	d := Delta{
		LinkDown: []LinkRef{{A: "core-1", B: "agg-2"}},
		LinkUp:   []LinkRef{{A: "agg-2", B: "edge-3"}},
		SetRouteMaps: []RouteMapEdit{
			{
				Router: "edge-1",
				Name:   "rm-in",
				Map: &RouteMap{
					Name: "rm-in",
					Clauses: []Clause{
						{
							Seq:    10,
							Action: Permit,
							Matches: []Match{
								{Kind: MatchPrefix, Arg: "pl-cust"},
								{Kind: MatchCommunity, Arg: "cl-peers"},
							},
							Sets: []Set{
								{Kind: SetLocalPref, Value: 200},
								{Kind: SetAddCommunity, Comm: 65001<<16 | 42},
							},
						},
						{Seq: 20, Action: Deny},
					},
				},
			},
			{Router: "edge-2", Name: "rm-gone"}, // nil Map = delete
		},
		SetPrefixLists: []PrefixListEdit{
			{
				Router: "edge-1",
				Name:   "pl-cust",
				List: &PrefixList{
					Name: "pl-cust",
					Entries: []PrefixEntry{
						{Action: Permit, Prefix: mustPrefix(t, "10.0.0.0/8"), Ge: 16, Le: 24},
						{Action: Deny, Prefix: mustPrefix(t, "0.0.0.0/0")},
					},
				},
			},
		},
		AddOriginated:    []OriginEdit{{Router: "edge-1", Prefix: "10.9.0.0/24"}},
		RemoveOriginated: []OriginEdit{{Router: "edge-2", Prefix: "10.8.0.0/24"}},
	}
	roundTrip(t, d)

	// The wire names must be stable snake_case, not Go field names.
	b, _ := json.Marshal(d)
	for _, want := range []string{
		`"link_down"`, `"set_route_maps"`, `"clauses"`, `"matches"`,
		`"sets"`, `"entries"`, `"add_originated"`, `"prefix"`,
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("delta wire missing %s:\n%s", want, b)
		}
	}
	if strings.Contains(string(b), `"Clauses"`) || strings.Contains(string(b), `"Entries"`) {
		t.Errorf("delta wire leaks Go field names:\n%s", b)
	}
}

func TestReportsRoundTrip(t *testing.T) {
	roundTrip(t, ApplyReport{
		Classes: 32, Adopted: 20, Unchanged: 15, Reassembled: 5,
		Invalidated: 7, InvalidatedPrefixes: []string{"10.0.1.0/24"},
		NewClasses: 2, RemovedClasses: 1, Degraded: true,
		CoalescedAway: []string{"link_down core-1--agg-2"}, Coalesced: 3,
		Duration: 12 * time.Millisecond,
	})
	roundTrip(t, ApplyStreamReport{
		Deltas: 10, Rejected: 1, Batches: 4, EmptyBatches: 1,
		EditsReceived: 20, EditsApplied: 8, Coalesced: 12, CoalesceRatio: 2.5,
		Adopted: 30, Invalidated: 4, NewClasses: 1, RemovedClasses: 1,
		DegradedBatches: 1, MaxPending: 6, FlushDrain: 2, FlushPending: 1,
		FlushStale: 1, FlushClose: 1, Duration: time.Second,
	})
	roundTrip(t, CompressReport{
		Network:           NetworkInfo{Name: "ft4", Routers: 20, Links: 32, Interfaces: 80, Classes: 16},
		ClassesCompressed: 16, SumAbstractNodes: 64, SumAbstractLinks: 96,
		NodeRatio: 5.0, LinkRatio: 5.3,
		Cache: CacheStats{
			Fresh: 2, Transported: 4, Served: 10, Adopted: 3, Misses: 6,
			Evictions: 1, LiveBytes: 1 << 20, PeakBytes: 2 << 20, BudgetBytes: 4 << 20,
		},
		BDDSetup: time.Millisecond, Duration: time.Second,
	})
	roundTrip(t, Report{
		Mode: "bonsai", Classes: 16, Pairs: 320, ReachablePairs: 300,
		AbstractNodeSum: 64, DistinctAbstractions: 4,
		CompressTime: time.Second, Total: 2 * time.Second,
		Cache: CacheStats{Fresh: 4},
	})
	roundTrip(t, ReachResult{Reachable: true, Compressed: true, Duration: time.Millisecond})
	roundTrip(t, RolesReport{Roles: 4, Routers: 20})
	roundTrip(t, RoutesReport{
		Dest: "10.0.0.0/24",
		Routes: []RouteEntry{
			{Router: "edge-1", Label: "bgp(lp=100)", NextHops: []string{"agg-1", "agg-2"}},
			{Router: "agg-1", Label: "<nil>"},
		},
	})
	roundTrip(t, ClassResult{
		Prefix: "10.0.0.0/24", AbstractNodes: 4, AbstractLinks: 6,
		Source: "fresh", Duration: time.Millisecond,
	})
	roundTrip(t, ApplyStats{Pending: 2, Received: 10, Rejected: 1, Batches: 3, MaxPending: 5})
	roundTrip(t, ClassSelector{Prefix: "10.0.0.0/24", MaxClasses: 8})
	roundTrip(t, VerifyRequest{Concrete: true, PerPair: true, MaxClasses: 4, Workers: 2})
	roundTrip(t, RolesRequest{NoErase: true, NoStatics: true})
	roundTrip(t, VersionInfo{
		Module: "bonsai", Version: "(devel)", GoVersion: "go1.24",
		Revision: "abc123", Time: "2024-01-01T00:00:00Z", Dirty: true,
	})
}

// TestDeltaWireFixture pins the exact wire form of a representative delta:
// a change here is a wire-format break for every stored JSONL replay log.
func TestDeltaWireFixture(t *testing.T) {
	wire := `{"link_down":[{"a":"x","b":"y"}],"set_prefix_lists":[{"router":"r1","name":"pl","list":{"entries":[{"action":1,"prefix":"10.0.0.0/8","ge":16}]}}]}`
	var d Delta
	if err := json.Unmarshal([]byte(wire), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.LinkDown) != 1 || d.LinkDown[0].A != "x" {
		t.Fatalf("link_down: %+v", d)
	}
	l := d.SetPrefixLists[0].List
	if l == nil || len(l.Entries) != 1 || l.Entries[0].Action != Deny ||
		l.Entries[0].Prefix.String() != "10.0.0.0/8" || l.Entries[0].Ge != 16 {
		t.Fatalf("prefix list: %+v", l)
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != wire {
		t.Fatalf("re-encode changed the wire:\n want %s\n got  %s", wire, b)
	}
}
